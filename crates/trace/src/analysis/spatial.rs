//! Spatial locality (Figure 7).
//!
//! Paper §4.3: *"Figure 7 shows the spatial locality as a percentage of I/O
//! requests occurring within a band of sectors. In this figure, sectors have
//! been combined into bands of 100K each."* and §5: *"The spatial locality
//! of the combined workload almost follows the [80/20] rule."*
//!
//! Besides the per-band percentages we compute the Lorenz curve and Gini
//! coefficient of the per-band distribution, and a direct
//! `fraction covered by the busiest 20 % of bands` figure to test the claim.

use serde::Serialize;

use crate::record::TraceRecord;

/// The paper's band width: 100,000 sectors (~49 MB of a 500 MB disk).
pub const PAPER_BAND_SECTORS: u32 = 100_000;

/// One band of the spatial distribution.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Band {
    /// First sector of the band.
    pub start: u32,
    /// Requests whose *starting* sector falls in the band.
    pub requests: u64,
    /// Share of all requests, in percent.
    pub pct: f64,
}

/// Figure-7 style spatial locality summary.
#[derive(Debug, Clone, Serialize)]
pub struct SpatialLocality {
    /// Band width in sectors.
    pub band_sectors: u32,
    /// All bands covering the disk, in address order (empty bands included).
    pub bands: Vec<Band>,
    /// Gini coefficient of requests across bands (0 = uniform, →1 = skewed).
    pub gini: f64,
    /// Fraction of requests landing in the busiest 20 % of bands.
    pub top20_fraction: f64,
}

impl SpatialLocality {
    /// Number of bands a disk of `total_sectors` splits into.
    pub fn nbands(band_sectors: u32, total_sectors: u32) -> usize {
        assert!(band_sectors > 0, "band width must be nonzero");
        (total_sectors as u64).div_ceil(band_sectors as u64).max(1) as usize
    }

    /// Compute the banded distribution over a disk of `total_sectors`.
    pub fn compute(records: &[TraceRecord], band_sectors: u32, total_sectors: u32) -> Self {
        let nbands = Self::nbands(band_sectors, total_sectors);
        let mut counts = vec![0u64; nbands];
        for r in records {
            let band = ((r.sector / band_sectors) as usize).min(nbands - 1);
            counts[band] += 1;
        }
        Self::from_band_counts(band_sectors, counts)
    }

    /// Assemble the summary from a pre-accumulated per-band count vector.
    ///
    /// Both `compute` and the incremental `SpatialState` in `essio-stream`
    /// finalize through this constructor (same `lorenz`/`gini` arithmetic on
    /// the same integers), so the two paths agree bit-for-bit.
    pub fn from_band_counts(band_sectors: u32, counts: Vec<u64>) -> Self {
        assert!(band_sectors > 0, "band width must be nonzero");
        let total: u64 = counts.iter().sum();
        let bands = counts
            .iter()
            .enumerate()
            .map(|(i, &requests)| Band {
                start: i as u32 * band_sectors,
                requests,
                pct: if total == 0 {
                    0.0
                } else {
                    requests as f64 * 100.0 / total as f64
                },
            })
            .collect();
        let gini = gini(&counts);
        let top20_fraction = top_fraction(&counts, 0.20);
        Self {
            band_sectors,
            bands,
            gini,
            top20_fraction,
        }
    }

    /// Total requests across all bands.
    pub fn total(&self) -> u64 {
        self.bands.iter().map(|b| b.requests).sum()
    }

    /// The busiest band.
    pub fn peak(&self) -> Option<&Band> {
        self.bands.iter().max_by_key(|b| b.requests)
    }

    /// Whether the distribution "almost follows the 80/20 rule": the busiest
    /// 20 % of bands carry at least `threshold` (e.g. 0.7) of the requests.
    pub fn is_pareto_like(&self, threshold: f64) -> bool {
        self.top20_fraction >= threshold
    }

    /// Human-readable band table (non-empty bands only).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("spatial locality (bands of sectors):\n");
        for b in &self.bands {
            if b.requests > 0 {
                let _ = writeln!(
                    s,
                    "  [{:>7}..{:>7}): {:>8} ({:5.1}%)",
                    b.start,
                    b.start as u64 + self.band_sectors as u64,
                    b.requests,
                    b.pct
                );
            }
        }
        let _ = writeln!(
            s,
            "  gini={:.3} top20%-of-bands carries {:.1}% of requests",
            self.gini,
            self.top20_fraction * 100.0
        );
        s
    }
}

/// Lorenz curve points `(population fraction, request fraction)` for counts
/// sorted ascending; starts at (0,0), ends at (1,1).
pub fn lorenz(counts: &[u64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    let n = sorted.len();
    let mut pts = Vec::with_capacity(n + 1);
    pts.push((0.0, 0.0));
    if total == 0 || n == 0 {
        pts.push((1.0, 1.0));
        return pts;
    }
    let mut cum = 0u64;
    for (i, c) in sorted.iter().enumerate() {
        cum += c;
        pts.push(((i + 1) as f64 / n as f64, cum as f64 / total as f64));
    }
    pts
}

/// Gini coefficient from a set of counts (1 − 2·area under Lorenz).
pub fn gini(counts: &[u64]) -> f64 {
    let pts = lorenz(counts);
    // Trapezoidal area under the Lorenz curve.
    let mut area = 0.0;
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    (1.0 - 2.0 * area).clamp(0.0, 1.0)
}

/// Fraction of the total carried by the busiest `frac` of the population
/// (e.g. `frac = 0.2` asks the 80/20 question). Busiest-first.
pub fn top_fraction(counts: &[u64], frac: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((counts.len() as f64 * frac).ceil() as usize).clamp(1, counts.len());
    let top: u64 = sorted[..k].iter().sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::rec;
    use crate::record::Op;

    #[test]
    fn bands_cover_disk_and_percentages_sum() {
        let recs = vec![
            rec(0.0, 50_000, 1, Op::Write),
            rec(1.0, 150_000, 1, Op::Write),
            rec(2.0, 999_999, 1, Op::Write),
            rec(3.0, 50_001, 1, Op::Write),
        ];
        let s = SpatialLocality::compute(&recs, 100_000, 1_000_000);
        assert_eq!(s.bands.len(), 10);
        assert_eq!(s.bands[0].requests, 2);
        assert_eq!(s.bands[1].requests, 1);
        assert_eq!(s.bands[9].requests, 1);
        let pct_sum: f64 = s.bands.iter().map(|b| b.pct).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
        assert_eq!(s.total(), 4);
        assert_eq!(s.peak().unwrap().start, 0);
    }

    #[test]
    fn out_of_range_sectors_clamp_to_last_band() {
        let recs = vec![rec(0.0, 2_000_000, 1, Op::Write)];
        let s = SpatialLocality::compute(&recs, 100_000, 1_000_000);
        assert_eq!(s.bands[9].requests, 1);
    }

    #[test]
    fn lorenz_endpoints() {
        let pts = lorenz(&[1, 2, 3]);
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        let last = *pts.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12 && (last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_uniform_is_low_skewed_is_high() {
        let uniform = vec![10u64; 100];
        assert!(gini(&uniform) < 0.01);
        let mut skewed = vec![0u64; 100];
        skewed[0] = 1000;
        assert!(gini(&skewed) > 0.95);
    }

    #[test]
    fn gini_empty_and_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn top_fraction_pareto() {
        // 10 bands; top 2 hold 80 of 100 requests → classic 80/20.
        let mut counts = vec![2u64; 8];
        counts.push(40);
        counts.push(44);
        counts[0] = 4;
        // total = 4 + 2·7 + 40 + 44 = 102; top 2 of 10 bands hold 84.
        let f = top_fraction(&counts, 0.2);
        assert!((f - 84.0 / 102.0).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn top_fraction_edges() {
        assert_eq!(top_fraction(&[], 0.2), 0.0);
        assert_eq!(top_fraction(&[0, 0], 0.2), 0.0);
        assert_eq!(top_fraction(&[5], 0.2), 1.0);
    }

    #[test]
    fn pareto_like_detection() {
        let mut counts = vec![1u64; 80];
        counts.extend(vec![50u64; 20]);
        let recs: Vec<_> = counts
            .iter()
            .enumerate()
            .flat_map(|(band, n)| (0..*n).map(move |_| rec(0.0, band as u32 * 100, 1, Op::Write)))
            .collect();
        let s = SpatialLocality::compute(&recs, 100, 100 * 100);
        assert!(s.is_pareto_like(0.7), "top20 = {}", s.top20_fraction);
    }

    #[test]
    fn empty_trace_has_zero_gini() {
        let s = SpatialLocality::compute(&[], 100_000, 1_000_000);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.total(), 0);
    }
}
