//! Time-series views of a trace.
//!
//! Figures 1 and 6 of the paper are *sector vs. time* scatter plots; Figures
//! 2–5 are *request size vs. time* scatter plots. These functions produce
//! the underlying point series, plus binned rate/byte series useful for
//! spotting the activity phases the paper narrates (startup paging burst,
//! the ~50 s wavelet read spike, the computation lull).

use crate::record::{Op, TraceRecord};

/// `(seconds, KiB)` points for a request-size scatter (Figures 2–5).
pub fn scatter_size(records: &[TraceRecord]) -> Vec<(f64, f64)> {
    records.iter().map(|r| (r.secs(), r.kib())).collect()
}

/// `(seconds, sector)` points for a request-location scatter (Figures 1, 6).
pub fn scatter_sector(records: &[TraceRecord]) -> Vec<(f64, u32)> {
    records.iter().map(|r| (r.secs(), r.sector)).collect()
}

/// One bin of aggregated activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Bin start, seconds.
    pub t0: f64,
    /// Requests dispatched in the bin.
    pub requests: u64,
    /// Bytes transferred in the bin.
    pub bytes: u64,
    /// Largest single request in the bin, bytes.
    pub max_bytes: u32,
    /// Reads among `requests`.
    pub reads: u64,
}

impl Bin {
    /// Request rate over a bin of `width` seconds.
    pub fn rate(&self, width: f64) -> f64 {
        self.requests as f64 / width
    }
}

/// Aggregate a trace into fixed-width time bins covering `[0, duration_s]`.
///
/// Empty bins are included so lulls are visible (the paper reads the
/// wavelet lull directly off the plot).
pub fn binned(records: &[TraceRecord], bin_s: f64, duration_s: f64) -> Vec<Bin> {
    assert!(bin_s > 0.0, "bin width must be positive");
    let nbins = (duration_s / bin_s).ceil().max(1.0) as usize;
    let mut bins: Vec<Bin> = (0..nbins)
        .map(|i| Bin {
            t0: i as f64 * bin_s,
            requests: 0,
            bytes: 0,
            max_bytes: 0,
            reads: 0,
        })
        .collect();
    for r in records {
        let idx = ((r.secs() / bin_s) as usize).min(nbins - 1);
        let b = &mut bins[idx];
        b.requests += 1;
        b.bytes += r.bytes() as u64;
        b.max_bytes = b.max_bytes.max(r.bytes());
        if r.op == Op::Read {
            b.reads += 1;
        }
    }
    bins
}

/// Locate the bin with the most bytes transferred — the "spike" the paper
/// points at ~50 s into the wavelet run (Figure 3).
pub fn peak_bytes_bin(bins: &[Bin]) -> Option<&Bin> {
    bins.iter().max_by_key(|b| b.bytes)
}

/// Longest run of consecutive bins with < `threshold` requests each,
/// returned as `(start_s, end_s)` — the computation lull detector.
pub fn longest_lull(bins: &[Bin], threshold: u64, bin_s: f64) -> Option<(f64, f64)> {
    let mut best: Option<(usize, usize)> = None;
    let mut run_start: Option<usize> = None;
    for (i, b) in bins.iter().enumerate() {
        if b.requests < threshold {
            run_start.get_or_insert(i);
        } else if let Some(s) = run_start.take() {
            if best.is_none_or(|(bs, be)| i - s > be - bs) {
                best = Some((s, i));
            }
        }
    }
    if let Some(s) = run_start {
        let i = bins.len();
        if best.is_none_or(|(bs, be)| i - s > be - bs) {
            best = Some((s, i));
        }
    }
    best.map(|(s, e)| (s as f64 * bin_s, e as f64 * bin_s))
}

/// Thin a scatter series for terminal display: keep at most `max` points,
/// always retaining each retained stride's maximum-value point so spikes
/// survive the decimation.
pub fn downsample(points: &[(f64, f64)], max: usize) -> Vec<(f64, f64)> {
    if points.len() <= max || max == 0 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max);
    points
        .chunks(stride)
        .map(|chunk| {
            *chunk
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaNs in traces"))
                .expect("chunks are non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::rec;
    use crate::record::Op;

    #[test]
    fn scatter_maps_fields() {
        let recs = vec![rec(1.5, 42, 4, Op::Read)];
        assert_eq!(scatter_size(&recs), vec![(1.5, 4.0)]);
        assert_eq!(scatter_sector(&recs), vec![(1.5, 42)]);
    }

    #[test]
    fn binned_counts_and_includes_empty_bins() {
        let recs = vec![
            rec(0.1, 0, 1, Op::Write),
            rec(0.2, 0, 2, Op::Read),
            rec(2.5, 0, 16, Op::Read),
        ];
        let bins = binned(&recs, 1.0, 3.0);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].requests, 2);
        assert_eq!(bins[0].reads, 1);
        assert_eq!(bins[0].bytes, 3072);
        assert_eq!(bins[1].requests, 0);
        assert_eq!(bins[2].max_bytes, 16 * 1024);
    }

    #[test]
    fn binned_clamps_late_records_into_last_bin() {
        let recs = vec![rec(9.9, 0, 1, Op::Write)];
        let bins = binned(&recs, 1.0, 5.0);
        assert_eq!(bins.last().unwrap().requests, 1);
    }

    #[test]
    fn peak_bin_finds_spike() {
        let recs = vec![
            rec(0.5, 0, 1, Op::Write),
            rec(5.5, 0, 16, Op::Read),
            rec(5.7, 0, 16, Op::Read),
        ];
        let bins = binned(&recs, 1.0, 10.0);
        let peak = peak_bytes_bin(&bins).unwrap();
        assert_eq!(peak.t0, 5.0);
    }

    #[test]
    fn lull_detector_finds_longest_quiet_stretch() {
        let recs = vec![
            rec(0.5, 0, 1, Op::Write),
            rec(1.5, 0, 1, Op::Write),
            // quiet 2..7
            rec(7.5, 0, 1, Op::Write),
        ];
        let bins = binned(&recs, 1.0, 10.0);
        let (s, e) = longest_lull(&bins, 1, 1.0).unwrap();
        assert_eq!(s, 2.0);
        assert_eq!(e, 7.0);
    }

    #[test]
    fn lull_at_tail_is_detected() {
        let recs = vec![rec(0.5, 0, 1, Op::Write)];
        let bins = binned(&recs, 1.0, 5.0);
        let (s, e) = longest_lull(&bins, 1, 1.0).unwrap();
        assert_eq!((s, e), (1.0, 5.0));
    }

    #[test]
    fn no_lull_when_always_busy() {
        let recs: Vec<_> = (0..5)
            .map(|i| rec(i as f64 + 0.5, 0, 1, Op::Write))
            .collect();
        let bins = binned(&recs, 1.0, 5.0);
        assert_eq!(longest_lull(&bins, 1, 1.0), None);
    }

    #[test]
    fn downsample_preserves_spikes() {
        let mut points: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, 1.0)).collect();
        points[777].1 = 32.0;
        let thin = downsample(&points, 50);
        assert!(thin.len() <= 50);
        assert!(thin.iter().any(|(_, v)| *v == 32.0), "spike must survive");
    }

    #[test]
    fn downsample_passes_through_small_series() {
        let points = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(downsample(&points, 10), points);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_panics() {
        binned(&[], 0.0, 1.0);
    }
}
