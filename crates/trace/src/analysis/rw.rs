//! Read/write mix and request rates (Table 1).
//!
//! Table 1 of the paper reports, per experiment: percentage of reads,
//! percentage of writes, requests per second, and total requests (average
//! per disk). The baseline is 100 % writes at ~0.9 req/s; PPM is 4 % reads,
//! wavelet 49 %, N-body 13 %.

use serde::Serialize;

use crate::record::{Op, TraceRecord};
use essio_sim::SimTime;

/// Read/write statistics for one experiment trace.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RwStats {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Total requests.
    pub total: u64,
    /// Run duration, seconds.
    pub duration_s: f64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl RwStats {
    /// Compute the mix over a run of `duration`.
    pub fn compute(records: &[TraceRecord], duration: SimTime) -> Self {
        let (mut reads, mut writes) = (0u64, 0u64);
        let (mut read_bytes, mut write_bytes) = (0u64, 0u64);
        for r in records {
            match r.op {
                Op::Read => {
                    reads += 1;
                    read_bytes += r.bytes() as u64;
                }
                Op::Write => {
                    writes += 1;
                    write_bytes += r.bytes() as u64;
                }
            }
        }
        Self::from_counts(reads, writes, read_bytes, write_bytes, duration)
    }

    /// Assemble stats from pre-accumulated counters.
    ///
    /// `compute` delegates here, and the incremental `RwState` in
    /// `essio-stream` finalizes through the same path, so batch and
    /// streaming analyses produce bit-identical values by construction.
    pub fn from_counts(
        reads: u64,
        writes: u64,
        read_bytes: u64,
        write_bytes: u64,
        duration: SimTime,
    ) -> Self {
        Self {
            reads,
            writes,
            total: reads + writes,
            duration_s: essio_sim::time::as_secs_f64(duration),
            read_bytes,
            write_bytes,
        }
    }

    /// Percentage of requests that are reads (0 for an empty trace).
    pub fn read_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reads as f64 * 100.0 / self.total as f64
        }
    }

    /// Percentage of requests that are writes.
    pub fn write_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.writes as f64 * 100.0 / self.total as f64
        }
    }

    /// Requests per second over the run.
    pub fn req_per_sec(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.total as f64 / self.duration_s
        }
    }

    /// A Table-1 row: `name, reads%, writes%, req/s, total`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<10} {:>6.0}% {:>6.0}% {:>12.2} {:>14}",
            name,
            self.read_pct(),
            self.write_pct(),
            self.req_per_sec(),
            self.total
        )
    }

    /// Table-1 header matching [`RwStats::table_row`].
    pub fn table_header() -> &'static str {
        "app         reads  writes  requests/sec  total requests"
    }

    /// Short single-line report fragment.
    pub fn report(&self) -> String {
        format!(
            "reads {} ({:.0}%)  writes {} ({:.0}%)  {:.2} req/s over {:.0}s\n",
            self.reads,
            self.read_pct(),
            self.writes,
            self.write_pct(),
            self.req_per_sec(),
            self.duration_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::rec;

    #[test]
    fn mix_and_rates() {
        let recs = vec![
            rec(0.0, 0, 1, Op::Read),
            rec(1.0, 0, 2, Op::Write),
            rec(2.0, 0, 4, Op::Write),
            rec(3.0, 0, 1, Op::Write),
        ];
        let s = RwStats::compute(&recs, 8_000_000);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 3);
        assert!((s.read_pct() - 25.0).abs() < 1e-12);
        assert!((s.write_pct() - 75.0).abs() < 1e-12);
        assert!((s.req_per_sec() - 0.5).abs() < 1e-12);
        assert_eq!(s.read_bytes, 1024);
        assert_eq!(s.write_bytes, (2 + 4 + 1) * 1024);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let s = RwStats::compute(&[], 1_000_000);
        assert_eq!(s.read_pct(), 0.0);
        assert_eq!(s.write_pct(), 0.0);
        assert_eq!(s.req_per_sec(), 0.0);
    }

    #[test]
    fn zero_duration_rate_is_zero() {
        let recs = vec![rec(0.0, 0, 1, Op::Write)];
        let s = RwStats::compute(&recs, 0);
        assert_eq!(s.req_per_sec(), 0.0);
    }

    #[test]
    fn table_row_formats() {
        let recs = vec![rec(0.0, 0, 1, Op::Write)];
        let s = RwStats::compute(&recs, 1_000_000);
        let row = s.table_row("Baseline");
        assert!(row.starts_with("Baseline"));
        assert!(row.contains("100%"));
        assert_eq!(
            RwStats::table_header().split_whitespace().count(),
            // app / reads / writes / requests/sec / total+requests
            6
        );
    }
}
