//! Workload-characterization analyses (paper §3.6 metrics, §4 results).
//!
//! Each submodule computes one family of metrics straight from a slice of
//! [`TraceRecord`]s, so analyses can run on live simulation output or on
//! traces reloaded through [`crate::codec`]:
//!
//! * [`size`] — request-size histograms and the 1 KB / 4 KB / 16 KB class
//!   decomposition behind Figures 2–5 and the paper's §5 taxonomy.
//! * [`series`] — time-series views (sector scatter for Figures 1 & 6,
//!   size scatter for Figures 2–5, binned rates).
//! * [`spatial`] — per-band request distribution, Lorenz curve and Gini
//!   coefficient (Figure 7, the "80/20 rule" claim).
//! * [`temporal`] — per-sector access frequency, hot spots and inter-access
//!   times (Figure 8).
//! * [`rw`] — read/write mix and request rates (Table 1).
//! * [`phases`] — activity-phase segmentation: the automated version of the
//!   paper's figure narratives (startup burst / ingest spike / lull /
//!   output burst).

pub mod phases;
pub mod rw;
pub mod series;
pub mod size;
pub mod spatial;
pub mod temporal;

use serde::Serialize;

use crate::record::TraceRecord;
use essio_sim::SimTime;

pub use phases::{Phase, PhaseConfig, PhaseKind};
pub use rw::RwStats;
pub use size::{ClassBreakdown, SizeClass, SizeHistogram};
pub use spatial::SpatialLocality;
pub use temporal::TemporalLocality;

/// Everything the study reports about one trace, in one struct.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    /// Read/write mix and rates (Table 1).
    pub rw: RwStats,
    /// Request-size decomposition (Figures 2–5 / §5 taxonomy).
    pub sizes: ClassBreakdown,
    /// Spatial locality per 100 K-sector band (Figure 7).
    pub spatial: SpatialLocality,
    /// Temporal locality / hot spots (Figure 8).
    pub temporal: TemporalLocality,
}

impl TraceSummary {
    /// Compute the full summary for a trace spanning `duration` of virtual
    /// time on a disk with `total_sectors` sectors.
    pub fn compute(records: &[TraceRecord], duration: SimTime, total_sectors: u32) -> Self {
        Self {
            rw: RwStats::compute(records, duration),
            sizes: ClassBreakdown::compute(records),
            spatial: SpatialLocality::compute(records, spatial::PAPER_BAND_SECTORS, total_sectors),
            temporal: TemporalLocality::compute(records, duration),
        }
    }

    /// Multi-line human-readable report.
    pub fn report(&self, name: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("=== {name} ===\n"));
        s.push_str(&self.rw.report());
        s.push_str(&self.sizes.report());
        s.push_str(&self.spatial.report());
        s.push_str(&self.temporal.report());
        s
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::record::{Op, Origin, TraceRecord};

    /// Build a record tersely for analysis tests.
    pub fn rec(ts_s: f64, sector: u32, kib: u32, op: Op) -> TraceRecord {
        TraceRecord {
            ts: (ts_s * 1e6) as u64,
            sector,
            nsectors: (kib * 2) as u16,
            pending: 0,
            node: 0,
            op,
            origin: Origin::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::rec;
    use super::*;
    use crate::record::Op;

    #[test]
    fn summary_composes_all_analyses() {
        let recs = vec![
            rec(0.0, 100, 1, Op::Write),
            rec(1.0, 100, 4, Op::Read),
            rec(2.0, 200_000, 16, Op::Read),
        ];
        let s = TraceSummary::compute(&recs, 10_000_000, 1_000_000);
        assert_eq!(s.rw.total, 3);
        assert_eq!(s.sizes.total(), 3);
        let report = s.report("test");
        assert!(report.contains("test"));
        assert!(report.contains("reads"));
    }

    #[test]
    fn summary_serializes_to_json() {
        let recs = vec![rec(0.0, 1, 1, Op::Write)];
        let s = TraceSummary::compute(&recs, 1_000_000, 1_000_000);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"rw\""));
    }
}
