//! Activity-phase segmentation.
//!
//! The paper reads its request-size figures as *narratives*: a startup
//! paging burst, a data-ingest spike, a computation lull, an output burst
//! at the end (§4.2–4.3). This module recovers that narrative automatically
//! from a trace: the timeline is binned, each bin classified by its
//! dominant activity, and adjacent bins of the same character merged into
//! [`Phase`]s. The `fig3` harness and `EXPERIMENTS.md` use it to locate the
//! wavelet's spike and lull without eyeballing a plot.

use serde::Serialize;

use crate::record::{Op, TraceRecord};

/// The character of a stretch of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PhaseKind {
    /// At or below the background (daemon) request rate.
    Quiet,
    /// Dominated by 4 KB paging transfers.
    Paging,
    /// Dominated by large (≥ 8 KB) reads — streaming data ingest.
    StreamingRead,
    /// Dominated by writes — output or flush activity.
    WriteBurst,
    /// Elevated but mixed activity.
    Busy,
}

impl PhaseKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Quiet => "quiet",
            PhaseKind::Paging => "paging",
            PhaseKind::StreamingRead => "streaming-read",
            PhaseKind::WriteBurst => "write-burst",
            PhaseKind::Busy => "busy",
        }
    }
}

/// A maximal run of same-character bins.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Phase {
    /// Phase start, seconds.
    pub start_s: f64,
    /// Phase end, seconds (exclusive).
    pub end_s: f64,
    /// Character.
    pub kind: PhaseKind,
    /// Requests inside the phase.
    pub requests: u64,
    /// Bytes moved inside the phase.
    pub bytes: u64,
}

impl Phase {
    /// Phase length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Parameters of the segmentation.
#[derive(Debug, Clone, Copy)]
pub struct PhaseConfig {
    /// Bin width, seconds.
    pub bin_s: f64,
    /// Requests per bin at or below which a bin is `Quiet` (set this just
    /// above the daemon background for the bin width).
    pub quiet_requests: u64,
    /// Fraction of a bin's requests that must be 4 KB to call it `Paging`.
    pub paging_fraction: f64,
    /// Fraction of a bin's bytes in ≥8 KB reads to call it `StreamingRead`.
    pub stream_fraction: f64,
    /// Fraction of requests that must be writes to call it `WriteBurst`.
    pub write_fraction: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        Self {
            bin_s: 5.0,
            quiet_requests: 6,
            paging_fraction: 0.5,
            stream_fraction: 0.4,
            write_fraction: 0.75,
        }
    }
}

/// Segment a (single-disk) trace covering `duration_s` seconds.
pub fn segment(records: &[TraceRecord], duration_s: f64, cfg: &PhaseConfig) -> Vec<Phase> {
    assert!(cfg.bin_s > 0.0);
    let nbins = (duration_s / cfg.bin_s).ceil().max(1.0) as usize;
    #[derive(Default, Clone, Copy)]
    struct Acc {
        requests: u64,
        bytes: u64,
        page4k: u64,
        stream_bytes: u64,
        writes: u64,
    }
    let mut bins = vec![Acc::default(); nbins];
    for r in records {
        let idx = ((r.secs() / cfg.bin_s) as usize).min(nbins - 1);
        let b = &mut bins[idx];
        b.requests += 1;
        b.bytes += r.bytes() as u64;
        if r.bytes() == 4096 {
            b.page4k += 1;
        }
        if r.op == Op::Read && r.bytes() >= 8 * 1024 {
            b.stream_bytes += r.bytes() as u64;
        }
        if r.op == Op::Write {
            b.writes += 1;
        }
    }
    let classify = |b: &Acc| -> PhaseKind {
        if b.requests <= cfg.quiet_requests {
            return PhaseKind::Quiet;
        }
        if b.stream_bytes as f64 >= cfg.stream_fraction * b.bytes as f64 {
            return PhaseKind::StreamingRead;
        }
        if b.page4k as f64 >= cfg.paging_fraction * b.requests as f64 {
            return PhaseKind::Paging;
        }
        if b.writes as f64 >= cfg.write_fraction * b.requests as f64 {
            return PhaseKind::WriteBurst;
        }
        PhaseKind::Busy
    };
    let mut phases: Vec<Phase> = Vec::new();
    for (i, b) in bins.iter().enumerate() {
        let kind = classify(b);
        let start_s = i as f64 * cfg.bin_s;
        match phases.last_mut() {
            Some(last) if last.kind == kind => {
                last.end_s = start_s + cfg.bin_s;
                last.requests += b.requests;
                last.bytes += b.bytes;
            }
            _ => phases.push(Phase {
                start_s,
                end_s: start_s + cfg.bin_s,
                kind,
                requests: b.requests,
                bytes: b.bytes,
            }),
        }
    }
    if let Some(last) = phases.last_mut() {
        last.end_s = last.end_s.min(duration_s.max(cfg.bin_s));
    }
    phases
}

/// The first phase of the given kind, if any.
pub fn first_of(phases: &[Phase], kind: PhaseKind) -> Option<&Phase> {
    phases.iter().find(|p| p.kind == kind)
}

/// The longest phase of the given kind, if any.
pub fn longest_of(phases: &[Phase], kind: PhaseKind) -> Option<&Phase> {
    phases
        .iter()
        .filter(|p| p.kind == kind)
        .max_by(|a, b| a.duration_s().partial_cmp(&b.duration_s()).expect("finite"))
}

/// One line per phase, the way the paper narrates a figure.
pub fn narrate(phases: &[Phase]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for p in phases {
        let _ = writeln!(
            s,
            "  {:>6.0}s..{:>6.0}s {:<14} {:>7} requests {:>10} bytes",
            p.start_s,
            p.end_s,
            p.kind.label(),
            p.requests,
            p.bytes
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Op, Origin, TraceRecord};

    fn rec(ts_s: f64, kib: u32, op: Op) -> TraceRecord {
        TraceRecord {
            ts: (ts_s * 1e6) as u64,
            sector: 100_000,
            nsectors: (kib * 2) as u16,
            pending: 0,
            node: 0,
            op,
            origin: Origin::Unknown,
        }
    }

    /// A synthetic wavelet-like biography: paging 0-20s, streaming reads
    /// 20-30s, quiet 30-60s, write burst 60-70s.
    fn wavelet_like() -> Vec<TraceRecord> {
        let mut t = Vec::new();
        for i in 0..60 {
            t.push(rec(
                i as f64 / 3.0,
                4,
                if i % 2 == 0 { Op::Read } else { Op::Write },
            ));
        }
        for i in 0..20 {
            t.push(rec(20.0 + i as f64 / 2.0, 16, Op::Read));
        }
        for i in 0..5 {
            t.push(rec(32.0 + i as f64 * 5.0, 1, Op::Write)); // background
        }
        for i in 0..40 {
            t.push(rec(60.0 + i as f64 / 4.0, 2, Op::Write));
        }
        t.sort_by_key(|r| r.ts);
        t
    }

    #[test]
    fn recovers_the_wavelet_narrative() {
        let phases = segment(
            &wavelet_like(),
            70.0,
            &PhaseConfig {
                quiet_requests: 2,
                ..Default::default()
            },
        );
        let paging = first_of(&phases, PhaseKind::Paging).expect("paging phase");
        assert!(paging.start_s < 5.0, "{paging:?}");
        let stream = first_of(&phases, PhaseKind::StreamingRead).expect("streaming phase");
        assert!((15.0..30.0).contains(&stream.start_s), "{stream:?}");
        let quiet = longest_of(&phases, PhaseKind::Quiet).expect("lull");
        assert!(quiet.duration_s() >= 20.0, "{quiet:?}");
        let burst = first_of(&phases, PhaseKind::WriteBurst).expect("write burst");
        assert!(burst.start_s >= 55.0, "{burst:?}");
    }

    #[test]
    fn phases_tile_the_timeline_without_overlap() {
        let phases = segment(&wavelet_like(), 70.0, &PhaseConfig::default());
        assert!((phases[0].start_s - 0.0).abs() < 1e-9);
        for w in phases.windows(2) {
            assert!(
                (w[0].end_s - w[1].start_s).abs() < 1e-9,
                "gap/overlap: {w:?}"
            );
            assert_ne!(w[0].kind, w[1].kind, "adjacent phases must differ");
        }
        let total: u64 = phases.iter().map(|p| p.requests).sum();
        assert_eq!(total, wavelet_like().len() as u64);
    }

    #[test]
    fn empty_trace_is_one_quiet_phase() {
        let phases = segment(&[], 100.0, &PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].kind, PhaseKind::Quiet);
        assert_eq!(phases[0].requests, 0);
    }

    #[test]
    fn narrate_is_one_line_per_phase() {
        let phases = segment(&wavelet_like(), 70.0, &PhaseConfig::default());
        let text = narrate(&phases);
        assert_eq!(text.lines().count(), phases.len());
        assert!(text.contains("paging"));
    }

    #[test]
    fn write_burst_requires_write_dominance() {
        // A mixed busy period is Busy, not WriteBurst.
        let mut t = Vec::new();
        for i in 0..40 {
            t.push(rec(
                i as f64 / 8.0,
                1,
                if i % 2 == 0 { Op::Read } else { Op::Write },
            ));
        }
        let phases = segment(&t, 5.0, &PhaseConfig::default());
        assert_eq!(phases[0].kind, PhaseKind::Busy);
    }
}
