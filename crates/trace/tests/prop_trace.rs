#![cfg(feature = "proptests")]

//! Property tests over the trace layer: codecs must round-trip arbitrary
//! records, and the analyses must conserve mass (every request counted
//! exactly once in every view).

use essio_trace::analysis::{
    rw::RwStats, series, size::ClassBreakdown, spatial, temporal::TemporalLocality,
};
use essio_trace::{codec, Op, Origin, TraceRecord};
use proptest::prelude::*;

fn record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2_000_000_000,
        0u32..999_900,
        1u16..=64,
        0u16..32,
        0u8..16,
        any::<bool>(),
        0u8..8,
    )
        .prop_map(
            |(ts, sector, nsectors, pending, node, read, origin)| TraceRecord {
                ts,
                sector,
                nsectors,
                pending,
                node,
                op: if read { Op::Read } else { Op::Write },
                origin: Origin::from_u8(origin),
            },
        )
}

fn trace(max: usize) -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec(record(), 0..max).prop_map(|mut v| {
        v.sort_by_key(|r| r.ts);
        v
    })
}

/// Unconstrained records: full-range fields, unsorted timestamps. The
/// columnar deltas are wrapping, so the format must be total over these.
fn wild_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(
            |(ts, sector, nsectors, pending, node, read, origin)| TraceRecord {
                ts,
                sector,
                nsectors,
                pending,
                node,
                op: if read { Op::Read } else { Op::Write },
                origin: Origin::from_u8(origin),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_codec_roundtrips_arbitrary_traces(t in trace(300)) {
        let encoded = codec::encode(&t);
        prop_assert_eq!(codec::decode(&encoded).unwrap(), t);
    }

    #[test]
    fn columnar_codec_roundtrips_arbitrary_traces(
        t in prop::collection::vec(wild_record(), 0..300),
        frame in 1usize..70,
    ) {
        let mut enc = codec::ColumnarEncoder::with_frame_records(frame);
        for r in &t {
            enc.push(*r);
        }
        let encoded = enc.finish();
        prop_assert_eq!(codec::decode_columnar(&encoded).unwrap(), t);
    }

    #[test]
    fn columnar_and_fixed_decode_to_identical_records(t in trace(300)) {
        let fixed = codec::encode(&t);
        let columnar = codec::encode_columnar(&t);
        // The sniffing decoder must see both encodings as the same trace.
        prop_assert_eq!(
            codec::decode(&columnar).unwrap(),
            codec::decode(&fixed).unwrap()
        );
    }

    #[test]
    fn columnar_chunked_decode_matches_batch(
        t in prop::collection::vec(wild_record(), 0..200),
        frame in 1usize..40,
        chunk in 1usize..40,
    ) {
        let mut enc = codec::ColumnarEncoder::with_frame_records(frame);
        for r in &t {
            enc.push(*r);
        }
        let encoded = enc.finish();
        let mut out: Vec<TraceRecord> = Vec::new();
        codec::decode_chunked(&encoded[..], chunk, &mut out).unwrap();
        prop_assert_eq!(out, t);
    }

    #[test]
    fn truncated_columnar_never_panics(t in trace(50), cut in 0usize..400) {
        let encoded = codec::encode_columnar(&t);
        let cut = cut.min(encoded.len());
        let _ = codec::decode(&encoded[..cut]); // must return Err or Ok, not panic
    }

    #[test]
    fn json_codec_roundtrips_arbitrary_traces(t in trace(100)) {
        let json = codec::to_json(&t).unwrap();
        prop_assert_eq!(codec::from_json(&json).unwrap(), t);
    }

    #[test]
    fn csv_has_one_row_per_record(t in trace(200)) {
        let csv = codec::to_csv(&t);
        prop_assert_eq!(csv.lines().count(), t.len() + 1);
    }

    #[test]
    fn truncated_binary_never_panics(t in trace(50), cut in 0usize..200) {
        let encoded = codec::encode(&t);
        let cut = cut.min(encoded.len());
        let _ = codec::decode(&encoded[..cut]); // must return Err, not panic
    }

    #[test]
    fn size_breakdown_counts_every_request_once(t in trace(300)) {
        let b = ClassBreakdown::compute(&t);
        prop_assert_eq!(b.total(), t.len() as u64);
        prop_assert_eq!(b.histogram.total(), t.len() as u64);
        // Confusion matrix only counts known origins.
        let known = t.iter().filter(|r| r.origin != Origin::Unknown).count() as u64;
        let conf: u64 = b.confusion.iter().map(|(_, _, n)| n).sum();
        prop_assert_eq!(conf, known);
    }

    #[test]
    fn rw_stats_partition_the_trace(t in trace(300)) {
        let s = RwStats::compute(&t, 1_000_000_000);
        prop_assert_eq!(s.reads + s.writes, t.len() as u64);
        let total_bytes: u64 = t.iter().map(|r| r.bytes() as u64).sum();
        prop_assert_eq!(s.read_bytes + s.write_bytes, total_bytes);
        if !t.is_empty() {
            prop_assert!((s.read_pct() + s.write_pct() - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spatial_bands_conserve_requests(t in trace(300), band in 1_000u32..200_000) {
        let s = spatial::SpatialLocality::compute(&t, band, 1_000_000);
        prop_assert_eq!(s.total(), t.len() as u64);
        let pct: f64 = s.bands.iter().map(|b| b.pct).sum();
        if !t.is_empty() {
            prop_assert!((pct - 100.0).abs() < 1e-6);
        }
        prop_assert!((0.0..=1.0).contains(&s.gini));
        prop_assert!((0.0..=1.0).contains(&s.top20_fraction));
    }

    #[test]
    fn lorenz_curve_is_monotone_and_convex_ordered(counts in prop::collection::vec(0u64..1000, 1..50)) {
        let pts = spatial::lorenz(&counts);
        for w in pts.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        // Lorenz curve lies below the diagonal.
        for (x, y) in &pts {
            prop_assert!(*y <= *x + 1e-9, "({x}, {y}) above the diagonal");
        }
    }

    #[test]
    fn temporal_counts_match_sector_coverage(t in trace(150)) {
        let tl = TemporalLocality::compute(&t, 1_000_000_000);
        let mut sectors = std::collections::HashSet::new();
        for r in &t {
            for s in r.sector..r.end_sector() {
                sectors.insert(s);
            }
        }
        prop_assert_eq!(tl.distinct_sectors, sectors.len() as u64);
        if let Some(h) = tl.hottest() {
            prop_assert!(h.accesses >= 1);
            prop_assert!(h.freq_per_sec > 0.0);
        }
    }

    #[test]
    fn binned_series_conserves_requests_and_bytes(t in trace(300)) {
        let duration_s = 2_000.0;
        let bins = series::binned(&t, 10.0, duration_s);
        let reqs: u64 = bins.iter().map(|b| b.requests).sum();
        let bytes: u64 = bins.iter().map(|b| b.bytes).sum();
        prop_assert_eq!(reqs, t.len() as u64);
        prop_assert_eq!(bytes, t.iter().map(|r| r.bytes() as u64).sum::<u64>());
        let reads: u64 = bins.iter().map(|b| b.reads).sum();
        prop_assert_eq!(reads, t.iter().filter(|r| r.op == Op::Read).count() as u64);
    }

    #[test]
    fn downsample_never_exceeds_cap_and_keeps_global_max(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..64.0), 1..500),
        cap in 1usize..64,
    ) {
        let thin = series::downsample(&points, cap);
        prop_assert!(thin.len() <= cap.max(points.len().min(cap)));
        let max_in = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let max_out = thin.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(max_in, max_out, "decimation must keep the peak");
    }
}
