#![cfg(feature = "proptests")]

//! Property tests: streaming ≡ batch, and merge is a lawful monoid op.
//!
//! The crate's core claim is that the incremental states reproduce the
//! batch analyses *bit-identically* under any sharding of the input.
//! Summaries are compared through their JSON rendering: Rust's shortest
//! round-trip float formatting is injective on distinct finite `f64`s, so
//! string equality here is bit equality of every field.

use proptest::prelude::*;

use essio_stream::{merge_all, StreamConfig, StreamSummary};
use essio_trace::analysis::TraceSummary;
use essio_trace::{Op, Origin, RecordSink, TraceRecord};

const TOTAL_SECTORS: u32 = 1_000_000;

fn cfg() -> StreamConfig {
    StreamConfig::paper(TOTAL_SECTORS)
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2_000_000_000,
        0u32..1_100_000, // includes sectors past the last full band
        1u16..64,
        0u16..16,
        0u8..16,
        any::<bool>(),
        0u8..8,
    )
        .prop_map(
            |(ts, sector, nsectors, pending, node, is_read, origin)| TraceRecord {
                ts,
                sector,
                nsectors,
                pending,
                node,
                op: if is_read { Op::Read } else { Op::Write },
                origin: Origin::from_u8(origin),
            },
        )
}

fn summary_of(records: &[TraceRecord]) -> StreamSummary {
    let mut s = StreamSummary::new(cfg());
    s.observe_all(records);
    s
}

fn json(s: &TraceSummary) -> String {
    serde_json::to_string(s).expect("summary serializes")
}

proptest! {
    /// Folding records one at a time and finalizing equals the batch
    /// multi-pass computation, bit for bit, on arbitrary traces.
    #[test]
    fn streaming_equals_batch(
        records in proptest::collection::vec(arb_record(), 0..400),
        duration in 1u64..4_000_000_000,
    ) {
        let stream = summary_of(&records).finalize(duration);
        let batch = TraceSummary::compute(&records, duration, TOTAL_SECTORS);
        prop_assert_eq!(json(&stream), json(&batch));
    }

    /// Any 3-way split, merged in either association order, finalizes to
    /// the same summary as observing the whole trace — merge is
    /// associative and commutative up to finalized output.
    #[test]
    fn merge_associative_and_commutative_on_random_splits(
        records in proptest::collection::vec(arb_record(), 0..300),
        cut_a in 0usize..301,
        cut_b in 0usize..301,
        duration in 1u64..4_000_000_000,
    ) {
        let i = cut_a.min(records.len());
        let j = cut_b.min(records.len());
        let (lo, hi) = (i.min(j), i.max(j));
        let a = summary_of(&records[..lo]);
        let b = summary_of(&records[lo..hi]);
        let c = summary_of(&records[hi..]);

        let whole = json(&summary_of(&records).finalize(duration));
        let left = (a.clone().merge(b.clone())).merge(c.clone());
        let right = a.clone().merge(b.clone().merge(c.clone()));
        let swapped = c.merge(a.merge(b));

        prop_assert_eq!(&json(&left.finalize(duration)), &whole);
        prop_assert_eq!(&json(&right.finalize(duration)), &whole);
        prop_assert_eq!(&json(&swapped.finalize(duration)), &whole);
        prop_assert_eq!(left.records, records.len() as u64);
    }

    /// The rayon parallel reduction agrees with a sequential fold for any
    /// shard count.
    #[test]
    fn parallel_merge_matches_sequential(
        records in proptest::collection::vec(arb_record(), 0..300),
        shards in 1usize..9,
        duration in 1u64..4_000_000_000,
    ) {
        let mut split: Vec<StreamSummary> = (0..shards).map(|_| StreamSummary::new(cfg())).collect();
        for (i, r) in records.iter().enumerate() {
            split[i % shards].observe(r);
        }
        let sequential = split
            .iter()
            .cloned()
            .fold(StreamSummary::new(cfg()), |acc, s| acc.merge(s));
        let parallel = merge_all(split).unwrap();
        prop_assert_eq!(
            json(&parallel.finalize(duration)),
            json(&sequential.finalize(duration))
        );
    }

    /// Space-Saving guarantees survive observation: tracked keys are never
    /// under-estimated and the error bound brackets the true count.
    #[test]
    fn hot_sketch_overestimates(records in proptest::collection::vec(arb_record(), 1..300)) {
        let s = summary_of(&records);
        let mut true_counts = std::collections::HashMap::new();
        for r in &records {
            *true_counts.entry(r.sector).or_insert(0u64) += 1;
        }
        for (sector, counter) in s.hot_sketch.top() {
            let t = true_counts.get(&sector).copied().unwrap_or(0);
            prop_assert!(counter.count >= t, "estimate {} under true {}", counter.count, t);
            prop_assert!(
                counter.count.saturating_sub(counter.err) <= t,
                "lower bound {} above true {}",
                counter.count - counter.err,
                t
            );
        }
        prop_assert_eq!(s.hot_sketch.observed(), records.len() as u64);
    }

    /// The inter-arrival log-histogram preserves totals across any split
    /// (one synthetic boundary gap is added per merge seam).
    #[test]
    fn interarrival_totals_survive_merge(
        records in proptest::collection::vec(arb_record(), 2..200),
        cut in 1usize..199,
    ) {
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| r.ts);
        let cut = cut.min(sorted.len() - 1);
        let a = summary_of(&sorted[..cut]);
        let b = summary_of(&sorted[cut..]);
        let merged = a.merge(b);
        // n records in time order → n-1 gaps, however the stream was split.
        prop_assert_eq!(merged.interarrival_us.total, (sorted.len() - 1) as u64);
    }
}
