//! The all-in-one streaming summary and its shard reduction.

use rayon::prelude::*;

use essio_sim::SimTime;
use essio_trace::analysis::spatial::PAPER_BAND_SECTORS;
use essio_trace::analysis::TraceSummary;
use essio_trace::{RecordSink, TraceRecord};

use crate::sketch::{LogHistogram, SpaceSaving};
use crate::state::{RwState, SizeState, SpatialState, TemporalState};

/// Configuration shared by every shard of one analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Spatial band width in sectors (paper: 100,000).
    pub band_sectors: u32,
    /// Disk size in sectors.
    pub total_sectors: u32,
    /// Space-Saving counters for the bounded hot-spot sketch.
    pub hot_capacity: usize,
}

impl StreamConfig {
    /// The paper's analysis parameters for a disk of `total_sectors`.
    pub fn paper(total_sectors: u32) -> Self {
        Self {
            band_sectors: PAPER_BAND_SECTORS,
            total_sectors,
            hot_capacity: 256,
        }
    }
}

/// Online equivalent of [`TraceSummary`]: every paper metric as mergeable
/// incremental state, plus bounded-memory sketches.
///
/// Implements [`RecordSink`], so it plugs directly into the kernel drain
/// path (`Experiment::run_streamed`), the chunked trace decoder
/// ([`crate::replay_path`]), or a [`NodeShards`] router.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    cfg: StreamConfig,
    /// Read/write mix (Table 1).
    pub rw: RwState,
    /// Size-class decomposition (Figures 2–5).
    pub sizes: SizeState,
    /// Banded spatial locality (Figure 7).
    pub spatial: SpatialState,
    /// Temporal locality / hot spots (Figure 8).
    pub temporal: TemporalState,
    /// Bounded-memory hot-spot sketch over starting sectors.
    pub hot_sketch: SpaceSaving<u32>,
    /// Log-bucket histogram of request inter-arrival gaps, µs.
    pub interarrival_us: LogHistogram,
    /// Records observed.
    pub records: u64,
    /// Earliest record timestamp seen, µs.
    pub first_ts: Option<SimTime>,
    /// Latest record timestamp seen, µs.
    pub last_ts: Option<SimTime>,
}

impl StreamSummary {
    /// Empty summary for a given configuration (the merge identity).
    pub fn new(cfg: StreamConfig) -> Self {
        Self {
            cfg,
            rw: RwState::default(),
            sizes: SizeState::default(),
            spatial: SpatialState::new(cfg.band_sectors, cfg.total_sectors),
            temporal: TemporalState::default(),
            hot_sketch: SpaceSaving::new(cfg.hot_capacity),
            interarrival_us: LogHistogram::new(),
            records: 0,
            first_ts: None,
            last_ts: None,
        }
    }

    /// The configuration this summary was built with.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Combine with a summary built over a disjoint record set.
    ///
    /// Exact states merge exactly (associative + commutative); the
    /// inter-arrival histogram accounts for the seam between the two
    /// streams' time ranges with one boundary gap, so totals stay exact
    /// even though bucketing is approximate. Panics on config mismatch.
    pub fn merge(mut self, other: StreamSummary) -> StreamSummary {
        assert_eq!(
            self.cfg, other.cfg,
            "cannot merge summaries with different configs"
        );
        self.rw.merge(&other.rw);
        self.sizes.merge(&other.sizes);
        self.spatial.merge(&other.spatial);
        self.temporal.merge(&other.temporal);
        self.hot_sketch.merge(&other.hot_sketch);
        self.interarrival_us.merge(&other.interarrival_us);
        // Boundary gap between the earlier stream's end and the later
        // stream's start (time-split shards; for interleaved shards this is
        // still a defensible seam sample).
        if let (Some(a_last), Some(b_first)) = (self.last_ts, other.first_ts) {
            self.interarrival_us.observe(b_first.saturating_sub(a_last));
        }
        self.records += other.records;
        self.first_ts = match (self.first_ts, other.first_ts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_ts = match (self.last_ts, other.last_ts) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Produce the batch-identical [`TraceSummary`] for a run of
    /// `duration`: every field matches what
    /// `TraceSummary::compute(&trace, duration, total_sectors)` returns on
    /// the concatenation of all observed records, bit for bit.
    pub fn finalize(&self, duration: SimTime) -> TraceSummary {
        TraceSummary {
            rw: self.rw.finalize(duration),
            sizes: self.sizes.finalize(),
            spatial: self.spatial.finalize(),
            temporal: self.temporal.finalize(duration),
        }
    }

    /// Human-readable report (delegates to the finalized summary, plus the
    /// sketch views the batch pipeline doesn't have).
    pub fn report(&self, name: &str, duration: SimTime) -> String {
        use std::fmt::Write as _;
        let mut s = self.finalize(duration).report(name);
        let _ = writeln!(
            s,
            "interarrival: mean {:.1} µs, p50 ≥ {} µs, p99 ≥ {} µs ({} gaps)",
            self.interarrival_us.mean(),
            self.interarrival_us.quantile_floor(0.50),
            self.interarrival_us.quantile_floor(0.99),
            self.interarrival_us.total,
        );
        if let Some((sector, c)) = self.hot_sketch.top().first().map(|&(k, c)| (k, c)) {
            let _ = writeln!(
                s,
                "hot sketch: top sector {sector} (count {} ± {}, {} counters)",
                c.count,
                c.err,
                self.hot_sketch.capacity(),
            );
        }
        s
    }
}

impl RecordSink for StreamSummary {
    fn observe(&mut self, r: &TraceRecord) {
        self.rw.observe(r);
        self.sizes.observe(r);
        self.spatial.observe(r);
        self.temporal.observe(r);
        self.hot_sketch.observe(r.sector, 1);
        if let Some(last) = self.last_ts {
            self.interarrival_us.observe(r.ts.saturating_sub(last));
        }
        self.records += 1;
        self.first_ts = Some(self.first_ts.map_or(r.ts, |t| t.min(r.ts)));
        self.last_ts = Some(self.last_ts.map_or(r.ts, |t| t.max(r.ts)));
    }
}

/// Per-node shard router: one [`StreamSummary`] per cluster node, updated
/// live as records arrive from the drain path. Finalize per node, or
/// reduce all shards with [`merge_all`] for the cluster-wide view.
#[derive(Debug, Clone)]
pub struct NodeShards {
    shards: Vec<StreamSummary>,
}

impl NodeShards {
    /// One shard per node, all sharing `cfg`.
    pub fn new(nodes: u8, cfg: StreamConfig) -> Self {
        let nodes = nodes.max(1);
        Self {
            shards: (0..nodes).map(|_| StreamSummary::new(cfg)).collect(),
        }
    }

    /// Shard for one node.
    pub fn node(&self, node: u8) -> &StreamSummary {
        &self.shards[node as usize]
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when there are no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Consume the router, yielding the per-node shards.
    pub fn into_shards(self) -> Vec<StreamSummary> {
        self.shards
    }

    /// Cluster-wide reduction of all shards.
    pub fn reduce(self) -> StreamSummary {
        merge_all(self.shards).expect("NodeShards always holds >= 1 shard")
    }
}

impl RecordSink for NodeShards {
    fn observe(&mut self, r: &TraceRecord) {
        let i = (r.node as usize).min(self.shards.len() - 1);
        self.shards[i].observe(r);
    }
}

/// Reduce shards to one summary with a rayon parallel reduce.
///
/// Merge order is data-independent only up to associativity — which the
/// exact states guarantee — so the parallel reduction tree yields the same
/// finalized `TraceSummary` as any sequential fold.
pub fn merge_all(shards: Vec<StreamSummary>) -> Option<StreamSummary> {
    let cfg = shards.first()?.config();
    Some(
        shards
            .into_par_iter()
            .map(|s| s)
            .reduce(move || StreamSummary::new(cfg), |a, b| a.merge(b)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use essio_trace::{Op, Origin};

    fn rec(ts: u64, sector: u32, nsectors: u16, node: u8, op: Op) -> TraceRecord {
        TraceRecord {
            ts,
            sector,
            nsectors,
            pending: 0,
            node,
            op,
            origin: Origin::FileData,
        }
    }

    fn sample(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                rec(
                    i * 500,
                    (i as u32 * 977) % 1_000_000,
                    2 * (1 + (i % 4) as u16),
                    (i % 4) as u8,
                    if i % 5 == 0 { Op::Read } else { Op::Write },
                )
            })
            .collect()
    }

    #[test]
    fn streaming_equals_batch_on_synthetic_trace() {
        let recs = sample(2000);
        let duration = 2000 * 500 + 1;
        let mut s = StreamSummary::new(StreamConfig::paper(1_000_000));
        s.observe_all(&recs);
        let stream = s.finalize(duration);
        let batch = TraceSummary::compute(&recs, duration, 1_000_000);
        assert_eq!(
            serde_json::to_string(&stream).unwrap(),
            serde_json::to_string(&batch).unwrap(),
            "streaming and batch summaries must be bit-identical"
        );
    }

    #[test]
    fn shard_merge_equals_whole() {
        let recs = sample(1000);
        let duration = 1_000_000;
        let cfg = StreamConfig::paper(1_000_000);
        let mut whole = StreamSummary::new(cfg);
        whole.observe_all(&recs);

        let mut shards: Vec<StreamSummary> = (0..7).map(|_| StreamSummary::new(cfg)).collect();
        for (i, r) in recs.iter().enumerate() {
            shards[i % 7].observe(r);
        }
        let merged = merge_all(shards).unwrap();
        assert_eq!(
            serde_json::to_string(&merged.finalize(duration)).unwrap(),
            serde_json::to_string(&whole.finalize(duration)).unwrap(),
        );
        assert_eq!(merged.records, whole.records);
    }

    #[test]
    fn node_shards_route_by_node() {
        let recs = sample(400);
        let cfg = StreamConfig::paper(1_000_000);
        let mut shards = NodeShards::new(4, cfg);
        shards.observe_all(&recs);
        for node in 0..4u8 {
            let expect = recs.iter().filter(|r| r.node == node).count() as u64;
            assert_eq!(shards.node(node).records, expect);
        }
        let merged = shards.reduce();
        assert_eq!(merged.records, 400);
    }

    #[test]
    fn merge_identity_is_neutral() {
        let recs = sample(100);
        let cfg = StreamConfig::paper(1_000_000);
        let mut s = StreamSummary::new(cfg);
        s.observe_all(&recs);
        let direct = serde_json::to_string(&s.clone().finalize(123_456)).unwrap();
        let left = StreamSummary::new(cfg).merge(s.clone());
        let right = s.merge(StreamSummary::new(cfg));
        assert_eq!(
            serde_json::to_string(&left.finalize(123_456)).unwrap(),
            direct
        );
        assert_eq!(
            serde_json::to_string(&right.finalize(123_456)).unwrap(),
            direct
        );
    }

    #[test]
    #[should_panic(expected = "different configs")]
    fn config_mismatch_panics() {
        let a = StreamSummary::new(StreamConfig::paper(1_000_000));
        let b = StreamSummary::new(StreamConfig::paper(2_000_000));
        let _ = a.merge(b);
    }
}
