//! Incremental per-metric states: observe / merge / finalize.
//!
//! Each state accumulates exactly the integers its batch counterpart in
//! `essio-trace::analysis` accumulates, and finalizes through the batch
//! code's own constructors — that is what makes streaming ≡ batch hold
//! bit-for-bit rather than approximately.
//!
//! All four states form commutative monoids under `merge` (the identity is
//! the freshly-constructed state), so a trace may be split into shards in
//! any way, folded shard-locally, and reduced in any order.

use std::collections::{BTreeMap, HashMap};

use essio_sim::SimTime;
use essio_trace::analysis::size::SizeHistogram;
use essio_trace::analysis::temporal::gaps_from_spans;
use essio_trace::analysis::{
    ClassBreakdown, RwStats, SizeClass, SpatialLocality, TemporalLocality,
};
use essio_trace::{Op, Origin, TraceRecord};

/// Streaming read/write mix (batch: [`RwStats`]).
#[derive(Debug, Clone, Default)]
pub struct RwState {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl RwState {
    /// Fold one record in.
    pub fn observe(&mut self, r: &TraceRecord) {
        match r.op {
            Op::Read => {
                self.reads += 1;
                self.read_bytes += r.bytes() as u64;
            }
            Op::Write => {
                self.writes += 1;
                self.write_bytes += r.bytes() as u64;
            }
        }
    }

    /// Combine with a state built over a disjoint record set.
    pub fn merge(&mut self, other: &RwState) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
    }

    /// Produce the batch-identical figure for a run of `duration`.
    pub fn finalize(&self, duration: SimTime) -> RwStats {
        RwStats::from_counts(
            self.reads,
            self.writes,
            self.read_bytes,
            self.write_bytes,
            duration,
        )
    }
}

/// Streaming size-class decomposition (batch: [`ClassBreakdown`]).
#[derive(Debug, Clone, Default)]
pub struct SizeState {
    /// Requests per size class.
    pub class_counts: BTreeMap<SizeClass, u64>,
    /// Requests per exact transfer size in bytes.
    pub size_counts: BTreeMap<u32, u64>,
    /// (class, origin-as-u8) → count, known origins only.
    pub confusion: BTreeMap<(SizeClass, u8), u64>,
}

impl SizeState {
    /// Fold one record in.
    pub fn observe(&mut self, r: &TraceRecord) {
        let bytes = r.bytes();
        let class = SizeClass::classify(bytes);
        *self.class_counts.entry(class).or_insert(0) += 1;
        *self.size_counts.entry(bytes).or_insert(0) += 1;
        if r.origin != Origin::Unknown {
            *self.confusion.entry((class, r.origin as u8)).or_insert(0) += 1;
        }
    }

    /// Combine with a state built over a disjoint record set.
    pub fn merge(&mut self, other: &SizeState) {
        for (&k, &v) in &other.class_counts {
            *self.class_counts.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.size_counts {
            *self.size_counts.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.confusion {
            *self.confusion.entry(k).or_insert(0) += v;
        }
    }

    /// Produce the batch-identical breakdown.
    pub fn finalize(&self) -> ClassBreakdown {
        ClassBreakdown::from_counts(
            self.class_counts.clone(),
            SizeHistogram {
                counts: self.size_counts.clone(),
            },
            self.confusion.clone(),
        )
    }
}

/// Streaming banded spatial locality (batch: [`SpatialLocality`]).
#[derive(Debug, Clone)]
pub struct SpatialState {
    /// Band width in sectors.
    pub band_sectors: u32,
    /// Requests per band (fixed length: the whole disk).
    pub counts: Vec<u64>,
}

impl SpatialState {
    /// State for a disk of `total_sectors` split into `band_sectors` bands.
    pub fn new(band_sectors: u32, total_sectors: u32) -> Self {
        let nbands = SpatialLocality::nbands(band_sectors, total_sectors);
        Self {
            band_sectors,
            counts: vec![0; nbands],
        }
    }

    /// Fold one record in.
    pub fn observe(&mut self, r: &TraceRecord) {
        let band = ((r.sector / self.band_sectors) as usize).min(self.counts.len() - 1);
        self.counts[band] += 1;
    }

    /// Combine with a state built over a disjoint record set.
    ///
    /// Panics if the two states describe different disks.
    pub fn merge(&mut self, other: &SpatialState) {
        assert_eq!(self.band_sectors, other.band_sectors, "band width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "band count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Produce the batch-identical figure.
    pub fn finalize(&self) -> SpatialLocality {
        SpatialLocality::from_band_counts(self.band_sectors, self.counts.clone())
    }
}

/// Per-sector access-time span: first/last timestamps and visit count.
///
/// Consecutive inter-access gaps telescope (Σ(tᵢ₊₁−tᵢ) = tₙ−t₁), so this
/// is all the state the §3.6 mean-inter-access metric needs, and it merges
/// exactly: `{min, max, sum}`.
#[derive(Debug, Clone, Copy)]
pub struct SectorSpan {
    /// Earliest access, µs.
    pub first: SimTime,
    /// Latest access, µs.
    pub last: SimTime,
    /// Number of accesses.
    pub count: u64,
}

/// Streaming temporal locality (batch: [`TemporalLocality`]).
#[derive(Debug, Clone, Default)]
pub struct TemporalState {
    /// Accesses per covered sector (a 16 KB transfer touches 32 sectors).
    pub counts: HashMap<u32, u64>,
    /// Access-time span per *starting* sector (the paper's record address).
    pub spans: HashMap<u32, SectorSpan>,
}

impl TemporalState {
    /// Fold one record in.
    pub fn observe(&mut self, r: &TraceRecord) {
        for s in r.sector..r.end_sector() {
            *self.counts.entry(s).or_insert(0) += 1;
        }
        let span = self.spans.entry(r.sector).or_insert(SectorSpan {
            first: r.ts,
            last: r.ts,
            count: 0,
        });
        span.first = span.first.min(r.ts);
        span.last = span.last.max(r.ts);
        span.count += 1;
    }

    /// Combine with a state built over a disjoint record set.
    pub fn merge(&mut self, other: &TemporalState) {
        // Per-seed shards of one disk mostly touch the same sectors, but
        // reserving for the disjoint worst case is one cheap call that
        // removes every rehash from the campaign merge loop.
        self.counts.reserve(other.counts.len());
        self.spans.reserve(other.spans.len());
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (&k, &s) in &other.spans {
            match self.spans.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let span = e.get_mut();
                    span.first = span.first.min(s.first);
                    span.last = span.last.max(s.last);
                    span.count += s.count;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
            }
        }
    }

    /// Produce the batch-identical figure for a run of `duration`.
    pub fn finalize(&self, duration: SimTime) -> TemporalLocality {
        let (gap_sum_us, gap_n) =
            gaps_from_spans(self.spans.values().map(|s| (s.first, s.last, s.count)));
        TemporalLocality::from_parts(self.counts.clone(), gap_sum_us, gap_n, duration)
    }
}
