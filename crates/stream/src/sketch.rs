//! Bounded-memory mergeable sketches.
//!
//! The exact states in [`crate::state`] are small for this study's traces
//! (a 500 MB disk has ~10⁶ sectors) but grow with the number of distinct
//! keys. These sketches cap memory at a chosen constant while keeping
//! useful guarantees, and both support `merge` for shard reduction:
//!
//! * [`SpaceSaving`] — the Metwally/Agrawal/El Abbadi top-k counter used
//!   for temporal hot spots: `k` counters total, every tracked key's
//!   estimate over-counts by at most its recorded `err`, and any key whose
//!   true frequency exceeds `n/k` is guaranteed to be tracked.
//! * [`LogHistogram`] — a base-2 log-bucket histogram (64 fixed buckets)
//!   for long-tailed quantities like inter-arrival gaps; merge is exact
//!   bucket-wise addition.

use std::collections::HashMap;
use std::hash::Hash;

/// One Space-Saving counter.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    /// Estimated count (never under the true count for a tracked key).
    pub count: u64,
    /// Maximum possible over-count folded into `count`.
    pub err: u64,
}

/// Space-Saving heavy-hitters sketch with at most `capacity` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Ord + Copy> {
    capacity: usize,
    counters: HashMap<K, Counter>,
    observed: u64,
}

impl<K: Eq + Hash + Ord + Copy> SpaceSaving<K> {
    /// Sketch tracking at most `capacity` keys (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            observed: 0,
        }
    }

    /// Counter capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations folded in (exact).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Record `weight` occurrences of `key`.
    pub fn observe(&mut self, key: K, weight: u64) {
        self.observed += weight;
        if let Some(c) = self.counters.get_mut(&key) {
            c.count += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(
                key,
                Counter {
                    count: weight,
                    err: 0,
                },
            );
            return;
        }
        // Evict the minimum counter: the newcomer inherits its count as the
        // over-estimate bound (classic Space-Saving step).
        // Tie-break on the key so eviction never depends on HashMap
        // iteration order — sketch contents must be deterministic per seed.
        let (&evict, &min) = self
            .counters
            .iter()
            .min_by_key(|(&k, c)| (c.count, k))
            .expect("capacity >= 1 so the map is non-empty");
        self.counters.remove(&evict);
        self.counters.insert(
            key,
            Counter {
                count: min.count + weight,
                err: min.count,
            },
        );
    }

    /// Estimated count for `key`, with its over-count bound; `None` if the
    /// key is not tracked (true count then ≤ the minimum tracked count).
    pub fn estimate(&self, key: K) -> Option<Counter> {
        self.counters.get(&key).copied()
    }

    /// Tracked keys sorted by estimated count, highest first; ties break on
    /// the key so the order is deterministic.
    pub fn top(&self) -> Vec<(K, Counter)> {
        let mut v: Vec<(K, Counter)> = self.counters.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by_key(|&(k, c)| (std::cmp::Reverse(c.count), k));
        v
    }

    /// Smallest tracked count (0 when under capacity) — the upper bound on
    /// the true count of any *untracked* key.
    pub fn min_count(&self) -> u64 {
        if self.counters.len() < self.capacity {
            0
        } else {
            self.counters.values().map(|c| c.count).min().unwrap_or(0)
        }
    }

    /// Combine with a sketch built over a disjoint observation stream.
    ///
    /// Follows the mergeable-summaries construction: estimates add (a key
    /// missing from one side contributes that side's `min_count` as both
    /// count and error bound), then the union is re-truncated to capacity.
    /// The result still over-estimates: for every tracked key,
    /// `count − err ≤ true ≤ count`, and total weight is preserved in
    /// [`SpaceSaving::observed`]. Merge is *not* bit-exact associative —
    /// that is inherent to the sketch; the exact states carry the
    /// bit-identical guarantees.
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        let self_min = self.min_count();
        let other_min = other.min_count();
        let mut merged: HashMap<K, Counter> =
            HashMap::with_capacity(self.counters.len() + other.counters.len());
        for (&k, &c) in &self.counters {
            let (oc, oe) = match other.counters.get(&k) {
                Some(o) => (o.count, o.err),
                None => (other_min, other_min),
            };
            merged.insert(
                k,
                Counter {
                    count: c.count + oc,
                    err: c.err + oe,
                },
            );
        }
        for (&k, &c) in &other.counters {
            merged.entry(k).or_insert(Counter {
                count: c.count + self_min,
                err: c.err + self_min,
            });
        }
        let mut v: Vec<(K, Counter)> = merged.into_iter().collect();
        v.sort_unstable_by_key(|&(k, c)| (std::cmp::Reverse(c.count), k));
        v.truncate(self.capacity);
        self.counters = v.into_iter().collect();
        self.observed += other.observed;
    }
}

/// Number of buckets in a [`LogHistogram`] (covers the full `u64` range).
pub const LOG_BUCKETS: usize = 65;

/// Base-2 logarithmic histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i)`. Fixed 65-counter footprint, exact merge, quantiles
/// with relative error bounded by the bucket width (a factor of 2).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub total: u64,
    /// Exact sum of samples (for exact means over sketched distributions).
    pub sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; LOG_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i`'s value range.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Exact mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Bucket floor of the `q`-quantile (q in [0, 1]); within a factor of
    /// 2 of the true quantile.
    pub fn quantile_floor(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(LOG_BUCKETS - 1)
    }

    /// Exact bucket-wise merge.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_exact_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for k in [1u32, 1, 2, 3, 1, 2] {
            s.observe(k, 1);
        }
        assert_eq!(s.estimate(1).unwrap().count, 3);
        assert_eq!(s.estimate(1).unwrap().err, 0);
        assert_eq!(s.estimate(2).unwrap().count, 2);
        assert_eq!(s.observed(), 6);
        assert_eq!(s.top()[0].0, 1);
    }

    #[test]
    fn space_saving_overestimates_heavy_keys() {
        // 3 counters, a skewed stream: heavy keys must be tracked with
        // count ≥ true and count − err ≤ true.
        let mut s = SpaceSaving::new(3);
        let mut true_counts: HashMap<u32, u64> = HashMap::new();
        let stream: Vec<u32> = (0..600)
            .map(|i| {
                if i % 3 == 0 {
                    7
                } else if i % 3 == 1 {
                    8
                } else {
                    i as u32
                }
            })
            .collect();
        for &k in &stream {
            s.observe(k, 1);
            *true_counts.entry(k).or_insert(0) += 1;
        }
        for heavy in [7u32, 8] {
            let t = true_counts[&heavy];
            let c = s.estimate(heavy).expect("heavy key tracked");
            assert!(c.count >= t, "estimate {} under true {t}", c.count);
            assert!(c.count - c.err <= t, "lower bound violated");
        }
        assert_eq!(s.observed(), 600);
    }

    #[test]
    fn space_saving_merge_keeps_heavy_keys_and_weight() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for i in 0..300u32 {
            a.observe(if i % 2 == 0 { 42 } else { i }, 1);
            b.observe(if i % 2 == 0 { 42 } else { 1000 + i }, 1);
        }
        let true_heavy = 150 + 150; // key 42 in both halves
        a.merge(&b);
        assert_eq!(a.observed(), 600);
        assert!(a.top().len() <= 4);
        let c = a.estimate(42).expect("heavy key survives merge");
        assert!(c.count >= true_heavy);
        assert!(c.count - c.err <= true_heavy);
    }

    #[test]
    fn log_histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::new();
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.total, 7);
        assert_eq!(h.sum, 1110);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.quantile_floor(0.0), 0);
        assert!(h.quantile_floor(1.0) >= 512);
    }

    #[test]
    fn log_histogram_merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.observe(v * 31);
            } else {
                b.observe(v * 31);
            }
            whole.observe(v * 31);
        }
        a.merge(&b);
        assert_eq!(a.buckets, whole.buckets);
        assert_eq!(a.total, whole.total);
        assert_eq!(a.sum, whole.sum);
    }
}
