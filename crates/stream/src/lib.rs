//! Online, mergeable, bounded-memory trace analytics.
//!
//! The batch pipeline in `essio-trace::analysis` answers the paper's
//! questions (§3.6, §4) by materialising the whole trace and making several
//! passes over it. That is fine for one 700-second experiment; it stops
//! being fine for seed campaigns, multi-node aggregation, or replaying
//! multi-gigabyte trace files. This crate re-expresses every paper metric
//! as an *incremental* state with three operations:
//!
//! * `observe(&TraceRecord)` — fold one record in, O(1) amortised;
//! * `merge(other)` — combine two states built over disjoint record sets.
//!   For the exact states this is associative and commutative, so shards
//!   can be reduced in any order (and in parallel, see [`merge_all`]);
//! * `finalize(...)` — produce the *identical* figure the batch analysis
//!   produces. Identical means bit-identical: each state accumulates the
//!   same integers the batch pass accumulates and finalizes through the
//!   same constructors in `essio-trace` (`RwStats::from_counts`,
//!   `ClassBreakdown::from_counts`, `SpatialLocality::from_band_counts`,
//!   `TemporalLocality::from_parts`), so every float is computed once, from
//!   the same integers, by the same expression.
//!
//! [`StreamSummary`] bundles the four exact states (read/write mix, size
//! classes, banded spatial locality, temporal hot spots + inter-access
//! gaps) and two bounded-memory sketches ([`sketch::SpaceSaving`] top-k
//! and a [`sketch::LogHistogram`] of inter-arrival times) behind a single
//! `RecordSink`, so it can be plugged directly into the device-driver
//! drain path (`Experiment::run_streamed`) or fed from the chunked trace
//! decoder ([`replay_path`] / `essio_trace::codec::ChunkedDecoder`).

pub mod sketch;
pub mod state;
pub mod summary;

pub use state::{RwState, SizeState, SpatialState, TemporalState};
pub use summary::{merge_all, NodeShards, StreamConfig, StreamSummary};

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use essio_trace::codec::{decode_chunked, ChunkedDecoder, DecodeError};
use essio_trace::RecordSink;

/// Replay a binary trace file into `sink` in bounded-memory chunks.
///
/// Convenience over [`essio_trace::codec::decode_chunked`]: peak resident
/// trace memory is `chunk_records` records regardless of file size.
pub fn replay_path(
    path: impl AsRef<Path>,
    chunk_records: usize,
    sink: &mut impl RecordSink,
) -> Result<u64, DecodeError> {
    let file = File::open(path).map_err(|e| DecodeError::Io(e.kind()))?;
    decode_chunked(BufReader::new(file), chunk_records, sink)
}

/// Replay only the first `limit` records of a binary trace into `sink`,
/// chunk by chunk, and return how many were actually replayed (fewer than
/// `limit` when the trace ends first).
///
/// This is the prefix hook divergence bisection in `essio-conform` binary-
/// searches over: any incremental state (a `StreamSummary`, a fingerprint
/// hasher) can be evaluated at an arbitrary record-prefix of a trace in
/// bounded memory, without materialising or even fully reading the trace.
/// A decode error inside the needed prefix propagates; errors *beyond* the
/// prefix are never reached because reading stops at `limit`.
pub fn replay_prefix<R: std::io::Read>(
    src: R,
    chunk_records: usize,
    limit: u64,
    sink: &mut impl RecordSink,
) -> Result<u64, DecodeError> {
    let mut dec = ChunkedDecoder::new(src, chunk_records);
    let mut chunk = Vec::with_capacity(dec.chunk_records());
    let mut replayed = 0u64;
    while replayed < limit {
        let n = dec.next_chunk(&mut chunk)?;
        if n == 0 {
            break;
        }
        let take = (limit - replayed).min(n as u64) as usize;
        sink.observe_all(&chunk[..take]);
        replayed += take as u64;
    }
    Ok(replayed)
}
