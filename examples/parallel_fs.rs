//! The PIOUS extension: coordinated parallel I/O over a declustered
//! parafile, observed by the per-disk instrumentation (DESIGN.md §7).
//!
//! ```sh
//! cargo run --example parallel_fs
//! ```

use ess_io_study::pfs::StripeSpec;
use ess_io_study::prelude::*;
use essio::pfsio;

fn main() {
    let mut bw = Beowulf::new(BeowulfConfig {
        nodes: 4,
        seed: 31,
        ..Default::default()
    });
    let svc = pfsio::spawn_service(&mut bw);

    // One writer produces a 256 KB dataset striped over all four disks;
    // three readers then scan disjoint thirds of it concurrently.
    let spec = StripeSpec::new(4096, vec![0, 1, 2, 3]);
    let svc_w = svc.clone();
    let writer_task = bw.next_task();
    let spec_w = spec.clone();
    bw.spawn(0, "producer", 0, move |ctx| {
        let mut pf = pfsio::ParaFile::open("dataset", spec_w, &svc_w, writer_task);
        let payload: Vec<u8> = (0..256 * 1024u32).map(|i| (i % 253) as u8).collect();
        for chunk in 0..8u64 {
            pf.write(
                ctx,
                chunk * 32 * 1024,
                &payload[(chunk as usize) * 32 * 1024..][..32 * 1024],
            );
        }
        0
    });
    for r in 0..3u8 {
        let svc_r = svc.clone();
        let spec_r = spec.clone();
        let my_task = bw.next_task();
        bw.spawn(1 + r, "consumer", 2_000_000, move |ctx| {
            let mut pf = pfsio::ParaFile::open("dataset", spec_r, &svc_r, my_task);
            let base = r as u64 * 80 * 1024;
            let data = pf.read(ctx, base, 80 * 1024);
            // Verify content that the producer has committed by now; the
            // coordinator serializes access, so reads are never torn.
            let ok = data
                .iter()
                .enumerate()
                .all(|(i, &b)| b == 0 || b == (((base as usize + i) % 253) as u8));
            assert!(ok, "consumer {r} read torn data");
            if r == 0 {
                ctx.compute(3_000_000);
                pfsio::shutdown(ctx, &svc_r);
            }
            0
        });
    }
    bw.run_apps(12_000_000);
    assert!(bw.exits().iter().all(|e| e.code == 0), "{:?}", bw.exits());

    let trace = bw.take_trace();
    println!("{} driver records across {} disks", trace.len(), bw.nodes());
    for n in 0..bw.nodes() {
        let per: Vec<_> = trace.iter().filter(|r| r.node == n).collect();
        let user = per
            .iter()
            .filter(|r| (60_000..940_000).contains(&r.sector))
            .count();
        println!(
            "  node {n}: {} records, {} in the user-data region (segment files)",
            per.len(),
            user
        );
    }
    let summary = TraceSummary::compute(&trace, 30_000_000, 999_936);
    println!();
    println!("{}", summary.report("pfs"));
    println!("=> the declustered parafile turned one logical dataset into parallel I/O on every member disk");
}
