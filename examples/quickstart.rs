//! Quickstart: assemble a small Beowulf, run the baseline experiment, and
//! read the instrumented driver's characterization of the quiescent system.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ess_io_study::prelude::*;

fn main() {
    // Two nodes, 120 virtual seconds of an idle cluster: only the kernel's
    // own daemons (syslogd, update, table writers, the trace spooler) touch
    // the disks — the paper's Figure 1 / Table 1 baseline.
    let result = Experiment::baseline()
        .nodes(2)
        .duration_secs(120)
        .seed(7)
        .run();

    println!(
        "ran {:.0} virtual seconds, captured {} trace records",
        result.duration_s(),
        result.trace.len()
    );
    println!();
    println!("{}", essio_trace::analysis::RwStats::table_header());
    println!("{}", result.table1_row());
    println!();
    println!("{}", result.summary.report("baseline"));

    // The paper's core observation about the quiescent system:
    assert_eq!(result.summary.rw.reads, 0, "baseline I/O is pure writes");
    let mode = result.summary.sizes.histogram.mode().unwrap();
    assert_eq!(mode, 1024, "1 KB filesystem blocks dominate");
    println!("=> write-only baseline at the filesystem block size, as in paper §4.1");
}
