//! Using the instrumented cluster as a library: run your *own* workload
//! process, control the trace ioctl at runtime, inject disk faults, and
//! post-process the captured trace with the codec + analysis toolkit.
//!
//! ```sh
//! cargo run --example custom_instrumentation
//! ```

use ess_io_study::apps::{CtxExt, SimFile};
use ess_io_study::kernel::{Placement, Syscall};
use ess_io_study::prelude::*;
use ess_io_study::trace::codec;

fn main() {
    let mut cfg = BeowulfConfig {
        nodes: 1,
        seed: 42,
        // Exercise the driver's retry path: every 50th command faults.
        disk_fault_every: Some(50),
        ..Default::default()
    };
    cfg.spool_trace = false; // keep the trace free of its own spooling I/O
    let mut bw = Beowulf::new(cfg);

    // A custom workload: a crude database-style workload — append a log,
    // then do scattered point reads against a data file.
    bw.install_file(0, "/data/table", Placement::User, &vec![0xA5u8; 128 * 1024]);
    bw.spawn(0, "mini-db", 0, |ctx| {
        let mut wal = SimFile::open(ctx, "/data/wal", true, Placement::User);
        let mut table = SimFile::open(ctx, "/data/table", false, Placement::User);
        for txn in 0..40u64 {
            // Write-ahead record, then force it to disk.
            wal.append(ctx, format!("txn {txn:06} commit\n").into_bytes());
            if txn % 8 == 7 {
                wal.fsync(ctx);
            }
            // Scattered point read.
            table.seek((txn * 37 % 128) * 1024);
            let page = table.read(ctx, 1024);
            assert_eq!(page.len(), 1024);
            ctx.compute(250_000); // 0.25 s of "query processing"
        }
        ctx.sys(Syscall::LogMsg { len: 80 }); // and a syslog line
        wal.fsync(ctx);
        wal.close(ctx);
        table.close(ctx);
        0
    });
    bw.run_apps(12_000_000);
    assert!(bw.exits().iter().all(|e| e.code == 0), "{:?}", bw.exits());

    let trace = bw.take_trace();
    println!("captured {} driver-level records", trace.len());
    println!(
        "injected disk faults survived: {}",
        bw.kernel(0).driver_stats().faults
    );

    // Round-trip the trace through the binary codec — what the study's
    // post-processing pipeline would consume.
    let encoded = codec::encode(&trace);
    let decoded = codec::decode(&encoded).expect("own format");
    assert_eq!(decoded, trace);
    println!(
        "binary trace: {} bytes ({} per record)",
        encoded.len(),
        codec::RECORD_BYTES
    );

    // And analyze it like any experiment.
    let summary = TraceSummary::compute(&trace, 60_000_000, 999_936);
    println!();
    println!("{}", summary.report("mini-db"));

    // First few records, CSV-style, for eyeballing.
    println!("{}", codec::to_csv(&trace[..trace.len().min(10)]));
}
