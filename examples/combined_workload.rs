//! The production-environment emulation: PPM, wavelet and N-body running
//! simultaneously on every node (paper §3.5 experiment 5, Figures 5–8).
//!
//! ```sh
//! cargo run --example combined_workload            # quick variant
//! cargo run --example combined_workload -- --full  # paper scale
//! ```

use ess_io_study::prelude::*;
use ess_io_study::trace::analysis::SizeClass;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exp = if full {
        Experiment::combined()
    } else {
        Experiment::combined().quick()
    };
    let result = exp.seed(5).run();
    assert!(result.all_clean(), "{:?}", result.exits);
    println!(
        "combined run: {:.0}s virtual (paper: ~700s at full scale), {} apps, {} records",
        result.duration_s(),
        result.exits.len(),
        result.trace.len()
    );

    // Figure 5: request sizes under the combined load.
    println!("{}", figures::fig5(&result).to_ascii(100, 24));
    println!(
        "over-16KB transfers: {} (paper: 16-32 KB under the multiprogramming-boosted I/O buffers)",
        result.summary.sizes.count(SizeClass::Over16K)
    );

    // Figure 7: spatial locality over 100K-sector bands.
    println!();
    println!("{}", result.summary.spatial.report());
    println!(
        "top 20% of bands carry {:.0}% of requests — the paper's 'almost 80/20' observation",
        result.summary.spatial.top20_fraction * 100.0
    );

    // Figure 8: temporal hot spots.
    println!();
    println!("{}", result.summary.temporal.report());
    if let Some(hot) = result.summary.temporal.hottest() {
        println!(
            "hottest: sector {} (paper: ≈45,000, the system log)",
            hot.sector
        );
    }

    // Table 1 row.
    println!();
    println!("{}", essio_trace::analysis::RwStats::table_header());
    println!("{}", result.table1_row());
}
