//! The wavelet experiment end to end: run the satellite-imagery workload on
//! the cluster and walk through the I/O phases the paper reads off Figure 3
//! — startup paging, the streaming-read spike, the computation lull, and
//! the write-out at the end.
//!
//! ```sh
//! cargo run --example wavelet_io            # quick 2-node variant
//! cargo run --example wavelet_io -- --full  # paper-scale 16-node run
//! ```

use ess_io_study::prelude::*;
use ess_io_study::trace::analysis::{series, SizeClass};
use ess_io_study::trace::Op;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exp = if full {
        Experiment::wavelet()
    } else {
        Experiment::wavelet().quick()
    };
    let result = exp.seed(11).run();
    assert!(
        result.all_clean(),
        "all ranks must finish: {:?}",
        result.exits
    );

    // Figure 3, as the paper plots it (one disk).
    let fig = figures::fig3(&result);
    println!("{}", fig.to_ascii(100, 24));

    // Phase narration from the binned series.
    let node0 = result.node_trace(0);
    let bins = series::binned(&node0, 5.0, result.duration_s());
    if let Some(peak) = series::peak_bytes_bin(&bins) {
        println!(
            "read spike: ~{:.0}s moves {} KB in 5s",
            peak.t0,
            peak.bytes / 1024
        );
    }
    if let Some((s, e)) = series::longest_lull(&bins, 3, 5.0) {
        println!(
            "computation lull: {:.0}s .. {:.0}s (working set resident)",
            s, e
        );
    }

    // The request-size taxonomy of §5.
    let sizes = &result.summary.sizes;
    println!();
    println!("{}", sizes.report());
    println!("4 KB paging requests: {}", sizes.count(SizeClass::Page4K));
    let big_reads = result
        .trace
        .iter()
        .filter(|r| r.op == Op::Read && r.bytes() >= 8 * 1024)
        .count();
    println!("cache-scale streaming reads (>=8 KB): {big_reads}");
    println!();
    println!("{}", result.table1_row());
    println!("(paper Table 1: wavelet is 49% reads / 51% writes — the only read-heavy app)");
}
