//! The paper's "next step" (§5): condense a measured trace into a workload
//! parameter set, regenerate synthetic traffic from it, and validate the
//! fit — the tuning-tool workflow the authors proposed.
//!
//! ```sh
//! cargo run --example workload_model
//! ```

use ess_io_study::prelude::*;

fn main() {
    // Measure a real workload first.
    let measured = Experiment::nbody().quick().seed(17).run();
    assert!(measured.all_clean());
    println!(
        "measured: {} records over {:.0}s ({})",
        measured.trace.len(),
        measured.duration_s(),
        measured.table1_row().trim()
    );

    // Fit the parameter set.
    let model = WorkloadModel::fit(&measured.trace, measured.duration);
    println!();
    println!("fitted parameter set:");
    println!(
        "  rate          {:.3} req/s (cluster-wide)",
        model.rate_per_s
    );
    println!("  read fraction {:.3}", model.read_fraction);
    println!(
        "  size mix      {} distinct request lengths",
        model.size_mix.len()
    );
    println!(
        "  band mix      {} populated 50K-sector bands",
        model.band_mix.len()
    );

    // Regenerate synthetic traffic and validate the marginals.
    let synthetic = model.synthesize(99, measured.duration_s());
    let v = model.validate(&synthetic, measured.duration);
    println!();
    println!("synthetic replay: {} records", synthetic.len());
    println!(
        "validation: rate err {:.1}%, read-fraction err {:.3}, size chi2 {:.1}, band chi2 {:.1} -> acceptable={}",
        v.rate_rel_err * 100.0,
        v.read_frac_err,
        v.size_chi2,
        v.band_chi2,
        v.acceptable()
    );
    assert!(v.acceptable(), "the model must reproduce its own marginals");

    // Cross-check: the model of the *wrong* application must not validate.
    let other = Experiment::wavelet().quick().seed(17).run();
    let cross = model.validate(&other.trace, other.duration);
    println!(
        "cross-check against the wavelet trace: acceptable={} (rate err {:.0}%, read-frac err {:.2})",
        cross.acceptable(),
        cross.rate_rel_err * 100.0,
        cross.read_frac_err
    );
    assert!(
        !cross.acceptable(),
        "distinct workloads must be distinguishable"
    );

    // The artifact a tuning tool would ingest.
    println!();
    println!("JSON parameter set:\n{}", model.to_json());
}
