//! # ess-io-study — facade crate
//!
//! Re-exports the full reproduction of *"An Experimental Study of
//! Input/Output Characteristics of NASA Earth and Space Sciences
//! Applications"* (Berry & El-Ghazawi, IPPS 1996). See the `essio` crate for
//! the experiment runner and `DESIGN.md` at the repository root for the
//! system inventory.
//!
//! ```no_run
//! use ess_io_study::prelude::*;
//!
//! let result = Experiment::baseline().duration_secs(60).run();
//! println!("{}", result.table1_row());
//! ```

pub use essio;
pub use essio_apps as apps;
pub use essio_disk as disk;
pub use essio_faults as faults;
pub use essio_kernel as kernel;
pub use essio_net as net;
pub use essio_obs as obs;
pub use essio_pfs as pfs;
pub use essio_sim as sim;
pub use essio_trace as trace;

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use essio::prelude::*;
}
